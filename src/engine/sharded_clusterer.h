#ifndef DDC_ENGINE_SHARDED_CLUSTERER_H_
#define DDC_ENGINE_SHARDED_CLUSTERER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "core/clusterer.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/params.h"
#include "engine/shard_map.h"
#include "engine/sharded_snapshot.h"
#include "engine/stitch.h"
#include "engine/thread_pool.h"
#include "telemetry/watchdog.h"

namespace ddc {

/// The multi-threaded engine: Theorem 4's fully-dynamic clusterer, sharded
/// over S spatial slabs with ghost-zone replication and cross-shard cluster
/// stitching, behind the ordinary Clusterer interface.
///
/// Ingest. Each update is routed to the owner slab of its point plus every
/// neighbor slab within the (1+ρ)ε halo (ShardMap::HoldersOf), accumulated
/// into per-shard batches, and published to per-shard MPSC queues consumed
/// by a pinned thread-pool worker — one FullyDynamicClusterer per shard,
/// each applying its stream in submission order. Ghost replicas contribute
/// to their host shard's counts and core statuses (that is what makes every
/// owned point's core status exact) but are *labeled* by their owner shard.
/// The first `warmup` inserts are buffered to pick the spread-maximizing
/// split dimension before any work is forwarded; the buffered prefix then
/// replays in order, so shards=1 reproduces the unsharded engine verbatim —
/// same op stream, same structures, same don't-care decisions.
///
/// Queries. Every Flush that applied work rebuilds the stitch table — a
/// union-find over shard-local component labels, fed by the incrementally
/// maintained boundary core-core edge set (see BoundaryStitcher) — then
/// composes a ShardedSnapshot (per-shard frozen GridSnapshots + the stitch
/// label table + routing records) and publishes it by an atomic shared_ptr
/// swap: one immutable epoch, readable lock-free from any number of
/// threads while further updates flow. Query/ClusterIdOf/SameCluster are
/// Flush + a resolve against the published snapshot; CurrentSnapshot() is
/// the wait-free read-side entry point (the latest published epoch, no
/// flush). An owner-core point belongs exactly to its owner's component; a
/// point that is non-core in its owner shard takes the union of the
/// memberships every holding shard computes for it, which restores the
/// cross-boundary attachments a single truncated halo cannot see. The
/// result satisfies the Theorem 3 sandwich at every shard count and equals
/// exact DBSCAN verbatim at rho == 0 (tests/conformance_test.cc).
///
/// Rebalancing. With Options::rebalance.enabled the slab partition is
/// elastic: at every stitch epoch the controller compares per-shard owned
/// occupancy, and when the max/mean imbalance persists it freezes the hot
/// shard (workers are quiescent post-drain), replays its live points into
/// two child clusterers split at the median of the hot dimension, swaps the
/// routing in ShardMap, and re-registers the boundary stitcher — all before
/// the epoch's snapshot is composed. Cold adjacent slabs merge by the
/// symmetric move. In-flight readers never observe a torn routing map:
/// routing only travels inside published ShardedSnapshots, which are
/// self-contained (deep-frozen per-shard snapshots + their own routing
/// records), so a reader on epoch E is untouched when epoch E+1 retires the
/// shards it is reading.
///
/// Threading contract: one ingest thread at a time (like every Clusterer);
/// the engine's workers are internal; snapshot readers are unrestricted.
class ShardedClusterer : public Clusterer {
 public:
  /// Elastic rebalancing: the controller runs at every dirty Flush (i.e.
  /// every stitch epoch), watches per-shard owned occupancy, and reshapes
  /// the slab partition live — splitting the hot shard at the median of its
  /// points along the split dimension, or merging the coldest adjacent pair
  /// — always at a stitch-epoch boundary, so readers only ever observe
  /// whole epochs (the published ShardedSnapshot is self-contained).
  struct RebalanceOptions {
    /// Master switch; everything below is inert when false (the
    /// engine.shard_imbalance gauge is still maintained).
    bool enabled = false;
    /// Split trigger: max/mean owned occupancy must exceed this for
    /// `epochs` consecutive dirty epochs.
    double split_imbalance = 1.35;
    /// Merge trigger: an adjacent pair whose combined owned occupancy is
    /// below merge_fill * mean for `epochs` consecutive dirty epochs is
    /// merged (the merged shard stays below mean, so it does not promptly
    /// re-split).
    double merge_fill = 0.55;
    /// Consecutive dirty epochs a trigger must persist before acting (K).
    int epochs = 3;
    /// Dirty epochs to sit out after any split/merge before acting again.
    int cooldown = 1;
    /// Shard-count ceiling; 0 means min(2 * Options::shards, kMaxShards).
    /// At the ceiling a pending split first merges the coldest adjacent
    /// pair away from the hot shard to free budget.
    int max_shards = 0;
    /// Shard-count floor for merges.
    int min_shards = 1;
    /// No rebalancing below this population (early noise is not signal).
    int64_t min_points = 512;
  };

  struct Options {
    /// Slab count S in [1, kMaxShards].
    int shards = 4;
    /// Worker threads T in [0, kMaxShards]; 0 means one per shard. Shard k
    /// is pinned to worker k % T, preserving per-shard op order.
    int threads = 0;
    /// Updates accumulated per shard before a batch is published.
    int batch = 64;
    /// Inserts buffered before the slab partition is fixed from their
    /// spread. 0 fixes the partition at the first update.
    int warmup = 2048;
    /// Heartbeat watchdog deadline: a worker quiet this long with batches
    /// queued is reported as stalled (stderr + "watchdog.stalls" counter).
    /// 0 disables the monitor thread.
    int64_t watchdog_deadline_ms = 2000;
    /// Live shard split/merge under skew.
    RebalanceOptions rebalance;
    /// Structure stack of the per-shard clusterers.
    FullyDynamicClusterer::Options inner;
  };

  static constexpr int kMaxShards = 64;

  ShardedClusterer(const DbscanParams& params, const Options& options);
  ~ShardedClusterer() override;

  PointId Insert(const Point& p) override;
  void Delete(PointId id) override;

  /// Flush + the published snapshot of the resulting epoch.
  std::shared_ptr<const ClusterSnapshot> Snapshot() override;

  /// The latest published epoch: safe from any thread, concurrently with
  /// ingest and the workers; null before the first Flush.
  std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const override {
    return published_.Load();
  }

  /// Publishes pending batches, blocks until every shard applied its stream,
  /// folds the boundary core deltas into the stitcher, and — when anything
  /// changed — rebuilds the stitch label table for a new epoch and publishes
  /// a fresh ShardedSnapshot.
  void Flush() override;

  std::vector<PointId> AlivePoints() const override;
  const DbscanParams& params() const override { return params_; }
  int64_t size() const override { return alive_; }

  /// Stitched global label of `id`'s cluster: an owner-core point's own
  /// component; for a non-core point, the least label of the clusters
  /// containing it (a DBSCAN border point may belong to several);
  /// kNoCluster for noise or dead ids. Labels are comparable between calls
  /// only within one epoch (i.e. until the next update batch is applied).
  /// Implies Flush.
  ClusterLabel ClusterIdOf(PointId id);

  /// True when some cluster contains both points. Implies Flush.
  bool SameCluster(PointId a, PointId b);

  /// Monotone counter bumped by every stitch rebuild (written by the ingest
  /// thread, readable from any thread — e.g. the watchdog monitor).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Publishes per-shard occupancy/load gauges into the process metrics
  /// registry under ShardMetricName(shard_id, field) — worker, slab (the
  /// shard's current slab index), owned, ghosts, core, boundary_core,
  /// ops_applied, batches, busy_us, queue_hwm — plus the engine.shards
  /// count, engine.epoch and engine.shard_imbalance gauges. Gauges are
  /// keyed by *stable shard id* (ids survive index shifts from rebalancing;
  /// retired shards' gauges are zeroed here, never left stale). Implies
  /// Flush.
  void PublishShardMetrics();

  /// Registry name of one per-shard gauge: "engine.shard.NN.<field>",
  /// keyed by the shard's stable id (zero-padded so registry iteration
  /// orders shards numerically). Ids start equal to slab indices and are
  /// never reused after a split/merge retires a shard.
  static std::string ShardMetricName(int shard_id, const char* field);

  const ShardMap& shard_map() const { return map_; }
  int64_t num_boundary_points() const { return stitcher_.num_points(); }
  int64_t num_boundary_edges() const { return stitcher_.num_edges(); }

  /// Rebalance observability (ingest thread).
  int64_t rebalance_splits() const { return splits_; }
  int64_t rebalance_merges() const { return merges_; }
  /// Last computed max/mean owned-occupancy imbalance, in milli-units
  /// (1500 = 1.5x); 1000 before the first dirty Flush.
  int64_t shard_imbalance_milli() const { return last_imbalance_milli_; }

 private:
  /// One queued update. Inserts carry the point and routing decisions made
  /// once on the ingest thread; every holder receives the same Op.
  struct Op {
    PointId gid;
    bool is_insert;
    bool boundary;  // Insert only: NearBoundary(point, owner).
    uint8_t owner;
    Point point;  // Insert only.
  };

  /// An owner-shard core-status transition of a boundary point, recorded by
  /// the worker and folded into the stitcher at the next Flush.
  struct CoreDelta {
    PointId gid;
    bool now_core;
    Point point;
  };

  struct Shard {
    /// Stable identity for telemetry: assigned monotonically at creation,
    /// never reused. `index` is the current slab position and shifts when
    /// other slabs split or merge; `id` does not.
    int id = 0;
    int index = 0;
    int worker = 0;
    std::unique_ptr<FullyDynamicClusterer> clusterer;

    // Ingest side (caller thread only).
    std::vector<Op> open;

    // The MPSC batch queue. queue_hwm is the deepest `pending` has ever
    // been, sampled at publish time (ingest thread, under mu).
    std::mutex mu;
    std::vector<std::vector<Op>> pending;
    int64_t queue_hwm = 0;

    // Worker-side state. Safe for the caller to read after ThreadPool::
    // Drain(), which establishes the happens-before edge.
    std::vector<PointId> global_of;   // local id -> global id
    std::vector<uint8_t> is_owned;    // local id -> owned here?
    std::vector<uint8_t> is_boundary; // local id -> owned and near an edge?
    FlatHashMap<PointId, PointId> local_of;  // global id -> live local id
    std::vector<CoreDelta> deltas;
    int64_t owned_alive = 0;
    int64_t ghost_alive = 0;
    int64_t core_count = 0;
    int64_t ops_applied = 0;
    int64_t batches_applied = 0;
    double busy_seconds = 0;
    bool dirty = false;  // Applied ops since the last stitch rebuild.
  };

  /// Global per-point record (caller thread only).
  struct PointRec {
    uint8_t owner = 0;
    uint8_t first_holder = 0;
    uint8_t last_holder = 0;
    bool alive = false;
  };

  /// A live point frozen out of a shard about to be replaced: the payload
  /// replayed into the successor shard(s).
  struct Migrant {
    PointId gid;
    Point point;
  };

  void RouteInsert(PointId gid, const Point& p);
  void RouteDelete(PointId gid);
  void EnqueueOp(Shard& shard, const Op& op);
  void PublishShard(Shard& shard);
  void ProcessShard(Shard* shard);
  void ApplyOp(Shard& shard, const Op& op);
  /// Fixes the partition from the warmup buffer and replays it in order.
  void FinishWarmup();
  /// Labels callback for BoundaryStitcher::Rebuild.
  void LabelsOf(PointId gid, std::vector<BoundaryStitcher::LabelKey>* out);
  /// Composes and publishes the ShardedSnapshot of the current epoch.
  /// Requires quiescent workers (call right after the drain barrier).
  void PublishSnapshot();
  /// Rebuilds the stitch label table and bumps the epoch.
  void RebuildLabels();

  // --- Elastic rebalancing (ingest thread, workers quiescent). ---

  /// A fresh shard with a new stable id and the core observer wired up;
  /// index/worker are assigned by RenumberShards.
  std::unique_ptr<Shard> MakeShard();
  /// index = position in shards_, worker = index % threads.
  void RenumberShards();
  /// (Re)creates the heartbeat watchdog with labels naming the current
  /// shard-to-worker pinning.
  void StartWatchdog();
  /// The rebalance controller: updates the imbalance gauge and trigger
  /// streaks, and performs at most one split or merge. Returns true when
  /// the topology changed (caller must RebuildLabels before publishing).
  bool MaybeRebalance();
  /// Splits slab `hot` at the median of its owned points; false when no
  /// admissible cut exists (slab too narrow or too one-sided).
  bool SplitShard(int hot);
  /// Merges slabs `left` and `left + 1`.
  bool MergeShards(int left);
  /// Median-of-owned-points cut for `shard`, clamped to the 2·halo edge
  /// margins; false when the result is inadmissible or useless.
  bool ChooseSplitCut(const Shard& shard, double* cut) const;
  /// Every live point held by `shard`, in deterministic local-id order.
  std::vector<Migrant> CollectLive(const Shard& shard) const;
  /// Applies one migrated insert directly (workers quiescent).
  void ApplyMigration(Shard& shard, PointId gid, const Point& p);
  /// Recomputes routing records after the slab set changed around position
  /// `pos`: points held by the replaced shard(s) are re-routed from their
  /// coordinates (found via `migrant_of`), everything else index-shifts by
  /// `delta` above the affected range.
  void ReRoutePoints(int pos, int replaced, int delta,
                     const std::vector<Migrant>& migrants,
                     const FlatHashMap<PointId, int32_t>& migrant_of);
  /// Rebuilds the boundary stitcher from scratch against the current
  /// partition: refreshes is_boundary flags and re-registers every live
  /// owned boundary core point (deterministic order).
  void ResetStitcher();

  DbscanParams params_;
  Options options_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  /// Heartbeat monitor over the pool workers; destroyed before the pool.
  std::unique_ptr<Watchdog> watchdog_;

  std::vector<PointRec> points_;
  int64_t alive_ = 0;

  /// Warmup buffer: the op stream before the partition is fixed.
  std::vector<Op> warmup_buffer_;
  int64_t warmup_inserts_ = 0;

  BoundaryStitcher stitcher_;
  std::atomic<uint64_t> epoch_{0};

  /// Rebalance controller state (ingest thread only).
  int next_shard_id_ = 0;
  std::vector<int> retired_shard_ids_;  // Gauges to zero at next publish.
  int split_streak_ = 0;
  int merge_streak_ = 0;
  int cooldown_left_ = 0;
  int64_t splits_ = 0;
  int64_t merges_ = 0;
  int64_t last_imbalance_milli_ = 1000;

  /// The read side: the latest composed epoch, swapped in by
  /// PublishSnapshot and loaded by readers (see SharedPtrSlot). Replaces
  /// the former reader-writer gate on the query path — no lock is ever
  /// held while a reader resolves labels.
  SharedPtrSlot<const ShardedSnapshot> published_;
};

}  // namespace ddc

#endif  // DDC_ENGINE_SHARDED_CLUSTERER_H_
