#include "engine/shard_map.h"

#include <cmath>

#include "common/check.h"

namespace ddc {

ShardMap::ShardMap(int shards, int dim, double halo)
    : shards_(shards), dim_(dim), halo_(halo) {
  DDC_CHECK(shards >= 1);
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(halo >= 0);
}

void ShardMap::InitFromSample(const std::vector<Point>& sample) {
  DDC_CHECK(!initialized_);
  initialized_ = true;
  // A single shard owns everything: HoldersOf is {0} and NearBoundary is
  // false regardless of slab geometry.
  if (shards_ == 1) return;
  if (!sample.empty()) {
    double best_spread = -1;
    for (int i = 0; i < dim_; ++i) {
      double lo = sample[0][i], hi = sample[0][i];
      for (const Point& p : sample) {
        lo = std::min(lo, p[i]);
        hi = std::max(hi, p[i]);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        split_dim_ = i;
        lo_ = lo;
        width_ = (hi - lo) / static_cast<double>(shards_);
      }
    }
  }
  // Zero spread (identical sample points) or no sample at all: keep width 1
  // so SlabIndex stays well defined; the floor below still applies.
  if (width_ <= 0) width_ = 1;
  // Slabs narrower than 2·halo would replicate every point into several
  // shards and register nearly every core point with the stitcher — an
  // unrepresentative (or empty) warmup sample must degrade toward fewer
  // effective shards, not toward all-pairs stitching. Width >= 2·halo caps
  // the replication factor at 2.
  width_ = std::max(width_, 2 * halo_);
}

int ShardMap::SlabIndex(double x) const {
  const double idx = std::floor((x - lo_) / width_);
  // Clamp in double space first: a wildly distant point must not overflow
  // the int conversion.
  if (idx < 0) return -1;
  if (idx >= static_cast<double>(shards_)) return shards_;
  return static_cast<int>(idx);
}

}  // namespace ddc
