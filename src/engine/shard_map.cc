#include "engine/shard_map.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace ddc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ShardMap::ShardMap(int shards, int dim, double halo)
    : shards_(shards), dim_(dim), halo_(halo) {
  DDC_CHECK(shards >= 1);
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(halo >= 0);
}

void ShardMap::InitFromSample(const std::vector<Point>& sample) {
  DDC_CHECK(!initialized_);
  initialized_ = true;
  // The split dimension and initial extent are computed even for a single
  // shard (HoldersOf is {0} and NearBoundary is false regardless, since
  // there are no cuts) so that a later SplitSlab knows which dimension the
  // partition runs along.
  if (!sample.empty()) {
    double best_spread = -1;
    for (int i = 0; i < dim_; ++i) {
      double lo = sample[0][i], hi = sample[0][i];
      for (const Point& p : sample) {
        lo = std::min(lo, p[i]);
        hi = std::max(hi, p[i]);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        split_dim_ = i;
        lo_ = lo;
        width_ = (hi - lo) / static_cast<double>(shards_);
      }
    }
  }
  // Zero spread (identical sample points) or no sample at all: keep width 1
  // so the cut layout stays well defined; the floor below still applies.
  if (width_ <= 0) width_ = 1;
  // Slabs narrower than 2·halo would replicate every point into several
  // shards and register nearly every core point with the stitcher — an
  // unrepresentative (or empty) warmup sample must degrade toward fewer
  // effective shards, not toward all-pairs stitching. Width >= 2·halo caps
  // the replication factor at 2.
  width_ = std::max(width_, 2 * halo_);
  cuts_.clear();
  cuts_.reserve(shards_ - 1);
  for (int k = 1; k < shards_; ++k) {
    cuts_.push_back(lo_ + static_cast<double>(k) * width_);
  }
}

double ShardMap::slab_lo(int shard) const {
  DDC_DCHECK(shard >= 0 && shard < shards_);
  return shard == 0 ? -kInf : cuts_[shard - 1];
}

double ShardMap::slab_hi(int shard) const {
  DDC_DCHECK(shard >= 0 && shard < shards_);
  return shard == shards_ - 1 ? kInf : cuts_[shard];
}

bool ShardMap::CanSplitAt(int shard, double cut) const {
  if (!initialized_ || shard < 0 || shard >= shards_) return false;
  if (!std::isfinite(cut)) return false;
  const double lo = slab_lo(shard);
  const double hi = slab_hi(shard);
  // Both children must keep every slab at least 2·halo wide (the
  // replication-factor bound); an infinite end side constrains nothing.
  if (std::isfinite(lo) && cut - lo < 2 * halo_) return false;
  if (std::isfinite(hi) && hi - cut < 2 * halo_) return false;
  return true;
}

void ShardMap::SplitSlab(int shard, double cut) {
  DDC_CHECK(CanSplitAt(shard, cut));
  cuts_.insert(cuts_.begin() + shard, cut);
  ++shards_;
}

void ShardMap::MergeSlabs(int left) {
  DDC_CHECK(initialized_ && left >= 0 && left + 1 < shards_);
  cuts_.erase(cuts_.begin() + left);
  --shards_;
}

}  // namespace ddc
