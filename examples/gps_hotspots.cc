// Append-only GPS hotspot detection with the semi-dynamic clusterer
// (Theorem 1): ride-hailing pickups stream in and are never retracted; the
// city wants live hotspot membership for dispatching.
//
// 2D and rho = 0, i.e. the "2d-Semi-Exact" configuration: exact DBSCAN
// clusters maintained at O~(1) per insertion, with C-group-by queries that
// cost O~(|Q|) regardless of how many millions of pings accumulated.
//
//   ./examples/gps_hotspots [--pings N]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/semi_dynamic_clusterer.h"
#include "workload/seed_spreader.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const int64_t pings = flags.GetInt("pings", 50000);

  // City coordinates in meters; a hotspot is ~150 m of walking distance,
  // and needs at least 10 nearby pickups to count.
  ddc::DbscanParams params{.dim = 2, .eps = 150.0, .min_pts = 10, .rho = 0.0};
  ddc::SemiDynamicClusterer clusterer(params);

  // Pickup stream: demand concentrates around wandering centers (event
  // venues, nightlife) — the seed spreader models exactly that.
  ddc::Rng rng(7);
  ddc::SeedSpreaderConfig city;
  city.dim = 2;
  city.num_points = pings;
  city.extent = 20000.0;     // 20 km x 20 km city.
  city.ball_radius = 120.0;  // Venue catchment.
  city.step = 300.0;
  city.noise_fraction = 0.02;
  const std::vector<ddc::Point> stream = ddc::GenerateSeedSpreader(city, rng);

  std::vector<ddc::PointId> recent;  // Last few pickups: the dispatch set.
  for (int64_t i = 0; i < pings; ++i) {
    const ddc::PointId id = clusterer.Insert(stream[i]);
    recent.push_back(id);
    if (recent.size() > 12) recent.erase(recent.begin());

    if ((i + 1) % (pings / 5) != 0) continue;
    // Dispatcher question: which of the latest pickups share a hotspot?
    ddc::CGroupByResult r = clusterer.Query(recent);
    int hot = 0;
    for (const auto& g : r.groups) hot += static_cast<int>(g.size());
    std::printf(
        "after %7lld pings: last %zu pickups -> %zu hotspot group(s), "
        "%d in hotspots, %zu isolated\n",
        static_cast<long long>(i + 1), recent.size(), r.groups.size(), hot,
        r.noise.size());
  }

  const ddc::CGroupByResult all = clusterer.QueryAll();
  std::printf("final state: %zu hotspots across %lld pickups (%zu noise)\n",
              all.groups.size(), static_cast<long long>(clusterer.size()),
              all.noise.size());
  return 0;
}
