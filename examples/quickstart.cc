// Quickstart: the ddc public API in one tour.
//
// Builds a fully-dynamic ρ-double-approximate DBSCAN clusterer, inserts two
// point clouds plus a bridge, asks C-group-by queries, deletes the bridge,
// and watches the cluster split back apart — Figure 1 of the paper, live.
//
//   ./examples/quickstart

#include <cstdio>
#include <vector>

#include "core/fully_dynamic_clusterer.h"

namespace {

void Report(const char* when, ddc::Clusterer& clusterer,
            const std::vector<ddc::PointId>& watched) {
  ddc::CGroupByResult r = clusterer.Query(watched);
  std::printf("%s: %zu watched points fall into %zu cluster(s), %zu noise\n",
              when, watched.size(), r.groups.size(), r.noise.size());
  for (size_t g = 0; g < r.groups.size(); ++g) {
    std::printf("  cluster %zu: points", g);
    for (const ddc::PointId p : r.groups[g]) std::printf(" #%d", p);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // eps, MinPts as in classic DBSCAN; rho is the approximation slack that
  // buys O~(1) updates (rho = 0 would maintain exact DBSCAN).
  ddc::DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.001};
  ddc::FullyDynamicClusterer clusterer(params);

  // Two separated clouds.
  std::vector<ddc::PointId> watched;
  for (int i = 0; i < 5; ++i) {
    const ddc::PointId id = clusterer.Insert(ddc::Point{0.3 * i, 0.0});
    if (i == 0) watched.push_back(id);
  }
  for (int i = 0; i < 5; ++i) {
    const ddc::PointId id = clusterer.Insert(ddc::Point{6.0 + 0.3 * i, 0.0});
    if (i == 0) watched.push_back(id);
  }
  Report("after two clouds", clusterer, watched);

  // A bridge of points merges them (an insertion can merge clusters).
  std::vector<ddc::PointId> bridge;
  for (const double x : {2.0, 2.9, 3.8, 4.7, 5.4}) {
    bridge.push_back(clusterer.Insert(ddc::Point{x, 0.0}));
  }
  Report("after bridging", clusterer, watched);

  // Deleting the bridge splits the cluster again (a deletion can split).
  for (const ddc::PointId id : bridge) clusterer.Delete(id);
  Report("after deleting the bridge", clusterer, watched);

  // The full clustering is just a C-group-by with Q = everything.
  ddc::CGroupByResult all = clusterer.QueryAll();
  std::printf("full clustering: %zu clusters over %lld points, %zu noise\n",
              all.groups.size(), static_cast<long long>(clusterer.size()),
              all.noise.size());
  return 0;
}
