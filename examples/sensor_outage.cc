// Sensor-mesh outage monitoring: deletions that split clusters, detected by
// C-group-by queries on designated probe sensors.
//
// A mesh of environmental sensors reports positions in 2D; DBSCAN clusters
// model connected coverage regions. Sensors fail (deletions) and field
// crews re-deploy them (insertions). The operations team keeps one probe
// sensor per region and periodically asks a single C-group-by query with
// all probes — if two probes stop sharing a cluster, the region has split
// and a crew is dispatched. The fully-dynamic clusterer makes both the
// failures and the probe checks cheap; IncDBSCAN would pay a BFS over the
// whole region per failure.
//
//   ./examples/sensor_outage

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/fully_dynamic_clusterer.h"

namespace {

/// A corridor of sensors between two sites, dense enough to be one cluster.
std::vector<ddc::Point> Corridor(ddc::Point a, ddc::Point b, int count,
                                 double jitter, ddc::Rng& rng) {
  std::vector<ddc::Point> pts;
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    ddc::Point p;
    for (int k = 0; k < 2; ++k) {
      p[k] = a[k] + t * (b[k] - a[k]) + rng.NextDouble(-jitter, jitter);
    }
    pts.push_back(p);
  }
  return pts;
}

}  // namespace

int main() {
  ddc::DbscanParams params{.dim = 2, .eps = 25.0, .min_pts = 4, .rho = 0.001};
  ddc::FullyDynamicClusterer mesh(params);
  ddc::Rng rng(2026);

  // Three sites connected by two corridors: one coverage region.
  const ddc::Point site_a{0, 0}, site_b{400, 0}, site_c{200, 300};
  std::vector<ddc::PointId> corridor_ab, corridor_bc;
  std::vector<ddc::PointId> probes;

  auto deploy = [&](const std::vector<ddc::Point>& pts,
                    std::vector<ddc::PointId>* ids) {
    for (const ddc::Point& p : pts) {
      const ddc::PointId id = mesh.Insert(p);
      if (ids != nullptr) ids->push_back(id);
    }
  };

  // Dense blobs at the sites; the first sensor of each is the probe.
  for (const ddc::Point& site : {site_a, site_b, site_c}) {
    std::vector<ddc::PointId> blob;
    deploy(Corridor(site, ddc::Point{site[0] + 40, site[1] + 40}, 25, 15, rng),
           &blob);
    probes.push_back(blob.front());
  }
  deploy(Corridor(site_a, site_b, 70, 5, rng), &corridor_ab);
  deploy(Corridor(site_b, site_c, 65, 5, rng), &corridor_bc);

  auto report = [&](const char* when) {
    ddc::CGroupByResult r = mesh.Query(probes);
    std::printf("%-34s -> %zu region(s)", when, r.groups.size());
    if (r.groups.size() > 1) std::printf("  ** SPLIT DETECTED, dispatch crew");
    if (!r.noise.empty()) std::printf("  ** %zu probe(s) isolated", r.noise.size());
    std::printf("\n");
  };

  report("all sensors up");

  // Corridor A-B browns out: every second sensor first, then the rest.
  std::vector<bool> down(corridor_ab.size(), false);
  for (size_t i = 5; i < corridor_ab.size(); i += 3) {
    mesh.Delete(corridor_ab[i]);
    down[i] = true;
  }
  report("A-B corridor degraded (every 3rd)");

  for (size_t i = 0; i < corridor_ab.size(); ++i) {
    if (!down[i]) mesh.Delete(corridor_ab[i]);
  }
  report("A-B corridor fully down");

  // Crew restores a thinner but sufficient corridor.
  std::vector<ddc::PointId> repaired;
  deploy(Corridor(site_a, site_b, 50, 4, rng), &repaired);
  report("A-B corridor repaired");

  // A wide outage takes down corridor B-C too.
  for (const ddc::PointId id : corridor_bc) mesh.Delete(id);
  report("B-C corridor down");

  std::printf("mesh size at end: %lld sensors\n",
              static_cast<long long>(mesh.size()));
  return 0;
}
