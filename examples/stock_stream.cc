// Sliding-window stock clustering — the paper's motivating scenario:
// "are stocks X and Y in the same cluster?", "break these 10 stocks by the
// clusters of their profiles", against a database that changes every day.
//
// Each trading day every stock publishes a 3-dimensional risk profile
// (volatility, momentum, volume anomaly). We keep a 20-day sliding window:
// today's profiles are inserted, day-minus-20's are deleted — a fully
// dynamic workload. A C-group-by query over a watchlist answers the
// analyst's question in O~(|Q|), never scanning the whole window.
//
//   ./examples/stock_stream [--days N]

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/fully_dynamic_clusterer.h"

namespace {

constexpr int kNumStocks = 400;
constexpr int kWindowDays = 20;

/// Sector means drift slowly; member stocks wobble around them.
struct Market {
  explicit Market(uint64_t seed) : rng(seed) {
    for (int s = 0; s < kSectors; ++s) {
      sector_mean.push_back(ddc::Point{rng.NextDouble(0, 100),
                                       rng.NextDouble(0, 100),
                                       rng.NextDouble(0, 100)});
    }
  }

  ddc::Point ProfileOf(int stock) {
    const ddc::Point& m = sector_mean[stock % kSectors];
    ddc::Point p;
    for (int i = 0; i < 3; ++i) p[i] = m[i] + rng.NextDouble(-3, 3);
    return p;
  }

  void NextDay() {
    for (ddc::Point& m : sector_mean) {
      for (int i = 0; i < 3; ++i) m[i] += rng.NextDouble(-1.5, 1.5);
    }
  }

  static constexpr int kSectors = 6;
  std::vector<ddc::Point> sector_mean;
  ddc::Rng rng;
};

}  // namespace

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const int days = static_cast<int>(flags.GetInt("days", 60));

  ddc::DbscanParams params{.dim = 3, .eps = 8.0, .min_pts = 10, .rho = 0.001};
  ddc::FullyDynamicClusterer clusterer(params);
  Market market(42);

  // day -> the PointIds inserted that day (for window eviction).
  std::deque<std::vector<ddc::PointId>> window;
  // The watchlist: one stock per sector plus two extras.
  const std::vector<int> watchlist = {0, 1, 2, 3, 4, 5, 7, 11};
  // stock -> its most recent profile's PointId.
  std::vector<ddc::PointId> latest(kNumStocks, ddc::kInvalidPoint);

  for (int day = 0; day < days; ++day) {
    market.NextDay();
    std::vector<ddc::PointId> today;
    today.reserve(kNumStocks);
    for (int s = 0; s < kNumStocks; ++s) {
      const ddc::PointId id = clusterer.Insert(market.ProfileOf(s));
      today.push_back(id);
      latest[s] = id;
    }
    window.push_back(std::move(today));
    if (static_cast<int>(window.size()) > kWindowDays) {
      for (const ddc::PointId id : window.front()) clusterer.Delete(id);
      window.pop_front();
    }

    if (day % 10 != 9) continue;
    // The analyst's question: group the watchlist by cluster.
    std::vector<ddc::PointId> q;
    for (const int s : watchlist) q.push_back(latest[s]);
    ddc::CGroupByResult r = clusterer.Query(q);
    std::printf("day %3d | window=%lld profiles | watchlist splits into %zu "
                "group(s), %zu outlier(s)\n",
                day + 1, static_cast<long long>(clusterer.size()),
                r.groups.size(), r.noise.size());
    for (const auto& g : r.groups) {
      std::printf("          group:");
      for (const ddc::PointId id : g) {
        for (const int s : watchlist) {
          if (latest[s] == id) std::printf(" stock%d", s);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
